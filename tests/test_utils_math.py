"""Unit tests for repro.utils.mathutils."""

import math

import pytest

from repro.utils.mathutils import (
    ceil_div,
    clamp,
    divisors,
    geomean,
    nearest_multiple,
    prod,
    round_to_stride,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)

    def test_rejects_negative_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(10, -2)


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_ints_stay_int(self):
        result = prod([2, 3, 4])
        assert result == 24
        assert isinstance(result, int)

    def test_mixed_floats(self):
        assert prod([2, 0.5]) == pytest.approx(1.0)


class TestClamp:
    def test_inside_range(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-3, 0, 10) == 0

    def test_above(self):
        assert clamp(30, 0, 10) == 10

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)


class TestGeomean:
    def test_single_value(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_order_invariant(self):
        assert geomean([2, 8, 4]) == pytest.approx(geomean([8, 4, 2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_large_values_no_overflow(self):
        result = geomean([1e300, 1e300])
        assert math.isfinite(result)
        assert result == pytest.approx(1e300, rel=1e-6)


class TestDivisors:
    def test_prime(self):
        assert divisors(7) == [1, 7]

    def test_composite_sorted(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_one(self):
        assert divisors(1) == [1]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            divisors(0)


class TestRoundToStride:
    def test_snaps_to_multiple(self):
        assert round_to_stride(13, 8, 8) == 16

    def test_respects_minimum(self):
        assert round_to_stride(1, 8, 8) == 8

    def test_exact_value(self):
        assert round_to_stride(24, 8, 8) == 24

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            round_to_stride(10, 0, 1)


class TestNearestMultiple:
    def test_rounds_up(self):
        assert nearest_multiple(13, 8) == 16

    def test_exact(self):
        assert nearest_multiple(16, 8) == 16

    def test_minimum_is_base(self):
        assert nearest_multiple(0, 8) == 8

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            nearest_multiple(5, 0)
