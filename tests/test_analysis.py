"""Fixture-driven tests for the repro static invariant checkers.

Each rule gets at least one known-bad snippet it must flag and one
good twin it must pass, including regression snippets reconstructing
the PR-5 ``_wait_any`` stall (an unbounded ``concurrent.futures.wait``)
and the PR-2 order-dependent seeding bug (a per-candidate global-RNG
draw).  The suite ends by asserting the real tree is finding-free.
"""

from pathlib import Path

from repro.analysis import lint_paths, lint_sources

REPO_ROOT = Path(__file__).resolve().parents[1]

# Paths that activate the path-scoped rules.
PARALLEL = "src/repro/search/parallel.py"
TRANSPORT = "src/repro/search/transport.py"
NAS = "src/repro/nas/quantization.py"
COST = "src/repro/cost/model.py"
SEARCH = "src/repro/search/driver.py"
UNSCOPED = "src/repro/tensors/layout.py"


def rule_findings(path, text, rule):
    return [f for f in lint_sources([(path, text)]) if f.rule == rule]


class TestUnboundedWait:
    def test_pr5_wait_any_stall_regression(self):
        # The PR-5 bug: concurrent.futures.wait with no timeout let one
        # hung worker stall the whole schedule past --eval-timeout.
        bad = (
            "from concurrent.futures import FIRST_COMPLETED, wait\n"
            "\n"
            "\n"
            "def wait_any(pending):\n"
            "    return wait(pending, return_when=FIRST_COMPLETED)\n"
        )
        found = rule_findings(PARALLEL, bad, "unbounded-wait")
        assert [f.line for f in found] == [5]
        assert "timeout" in found[0].message

    def test_bounded_wait_passes(self):
        good = (
            "from concurrent.futures import FIRST_COMPLETED, wait\n"
            "\n"
            "\n"
            "def wait_any(pending, timeout):\n"
            "    return wait(pending, timeout=timeout,\n"
            "                return_when=FIRST_COMPLETED)\n"
        )
        assert rule_findings(PARALLEL, good, "unbounded-wait") == []

    def test_bare_future_result_flagged(self):
        bad = "def collect(future):\n    return future.result()\n"
        assert rule_findings(PARALLEL, bad, "unbounded-wait")

    def test_result_with_timeout_passes(self):
        good = (
            "def collect(future, timeout):\n"
            "    return future.result(timeout=timeout)\n"
        )
        assert rule_findings(PARALLEL, good, "unbounded-wait") == []

    def test_event_wait_and_queue_get(self):
        bad = (
            "def drain(event, tasks):\n"
            "    event.wait()\n"
            "    return tasks.get()\n"
        )
        found = rule_findings(TRANSPORT, bad, "unbounded-wait")
        assert [f.line for f in found] == [2, 3]
        good = (
            "def drain(event, tasks):\n"
            "    event.wait(1.0)\n"
            "    return tasks.get(timeout=0.25)\n"
        )
        assert rule_findings(TRANSPORT, good, "unbounded-wait") == []

    def test_dict_get_is_not_a_wait(self):
        good = "def lookup(table, key):\n    return table.get(key)\n"
        assert rule_findings(TRANSPORT, good, "unbounded-wait") == []

    def test_socket_recv_needs_a_deadline(self):
        bad = "def read(sock):\n    return sock.recv(4)\n"
        assert rule_findings(TRANSPORT, bad, "unbounded-wait")
        good = (
            "def read(sock):\n"
            "    sock.settimeout(10.0)\n"
            "    return sock.recv(4)\n"
        )
        assert rule_findings(TRANSPORT, good, "unbounded-wait") == []

    def test_rule_only_applies_to_dispatch_modules(self):
        bad = "def collect(future):\n    return future.result()\n"
        assert rule_findings(UNSCOPED, bad, "unbounded-wait") == []


class TestLockDiscipline:
    BAD = (
        "class Buffer:\n"
        "    _GUARDED_BY = {\"_slots\": \"_lock\"}\n"
        "\n"
        "    def __init__(self, lock):\n"
        "        self._lock = lock\n"
        "        self._slots = []\n"
        "\n"
        "    def land(self, outcome):\n"
        "        self._slots.append(outcome)\n"
    )

    def test_bare_access_flagged(self):
        found = rule_findings(UNSCOPED, self.BAD, "lock-discipline")
        assert [f.line for f in found] == [9]
        assert "_slots" in found[0].message

    def test_init_is_exempt(self):
        found = rule_findings(UNSCOPED, self.BAD, "lock-discipline")
        assert all(f.line != 6 for f in found)

    def test_locked_access_passes(self):
        good = self.BAD.replace(
            "    def land(self, outcome):\n"
            "        self._slots.append(outcome)\n",
            "    def land(self, outcome):\n"
            "        with self._lock:\n"
            "            self._slots.append(outcome)\n",
        )
        assert rule_findings(UNSCOPED, good, "lock-discipline") == []

    def test_nested_callback_does_not_inherit_the_lock(self):
        bad = self.BAD.replace(
            "    def land(self, outcome):\n"
            "        self._slots.append(outcome)\n",
            "    def land(self, outcome):\n"
            "        with self._lock:\n"
            "            def callback():\n"
            "                self._slots.append(outcome)\n"
            "            return callback\n",
        )
        assert rule_findings(UNSCOPED, bad, "lock-discipline")


class TestDeterminism:
    def test_pr2_order_dependent_seeding_regression(self):
        # The PR-2 bug class: a per-candidate draw from the *global*
        # RNG makes results depend on evaluation order, breaking the
        # workers=1 <-> workers=N bit-identity contract.
        bad = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def seeds_for(candidates):\n"
            "    return [np.random.randint(0, 2**31)\n"
            "            for _ in candidates]\n"
        )
        found = rule_findings(NAS, bad, "determinism")
        assert found and "global-RNG" in found[0].message

    def test_content_derived_seeding_passes(self):
        good = (
            "import numpy as np\n"
            "\n"
            "from repro.utils.rng import derive_seed\n"
            "\n"
            "\n"
            "def rng_for(entropy, key):\n"
            "    return np.random.default_rng(derive_seed(entropy, key))\n"
        )
        assert rule_findings(NAS, good, "determinism") == []

    def test_unseeded_default_rng_flagged(self):
        bad = (
            "import numpy as np\n"
            "\n"
            "rng = np.random.default_rng()\n"
        )
        found = rule_findings(SEARCH, bad, "determinism")
        assert found and "without a seed" in found[0].message

    def test_stdlib_random_flagged(self):
        bad = (
            "import random\n"
            "\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
        )
        assert rule_findings(COST, bad, "determinism")

    def test_wall_clock_flagged_but_monotonic_passes(self):
        bad = "import time\n\nstamp = time.time()\n"
        assert rule_findings(COST, bad, "determinism")
        good = "import time\n\nstarted = time.monotonic()\n"
        assert rule_findings(COST, good, "determinism") == []

    def test_set_iteration_flagged(self):
        bad = (
            "def names(mapping):\n"
            "    return list({\"pe\", \"buf\"})\n"
        )
        assert rule_findings(SEARCH, bad, "determinism")
        good = (
            "def names(mapping):\n"
            "    return sorted({\"pe\", \"buf\"})\n"
        )
        assert rule_findings(SEARCH, good, "determinism") == []

    def test_rule_only_applies_to_deterministic_path(self):
        bad = "import time\n\nstamp = time.time()\n"
        assert rule_findings(UNSCOPED, bad, "determinism") == []


class TestResourceOwnership:
    def test_unowned_transport_flagged(self):
        bad = (
            "from repro.search.transport import TcpTransport\n"
            "\n"
            "\n"
            "def serve(addr):\n"
            "    transport = TcpTransport(bind=addr)\n"
            "    return transport.address\n"
        )
        found = rule_findings(SEARCH, bad, "resource-ownership")
        assert [f.line for f in found] == [5]

    def test_with_statement_owns(self):
        good = (
            "from repro.search.transport import TcpTransport\n"
            "\n"
            "\n"
            "def serve(addr):\n"
            "    with TcpTransport(bind=addr) as transport:\n"
            "        return transport.address\n"
        )
        assert rule_findings(SEARCH, good, "resource-ownership") == []

    def test_try_finally_owns(self):
        good = (
            "from repro.search.transport import TcpTransport\n"
            "\n"
            "\n"
            "def serve(addr):\n"
            "    transport = TcpTransport(bind=addr)\n"
            "    try:\n"
            "        return transport.address\n"
            "    finally:\n"
            "        transport.close()\n"
        )
        assert rule_findings(SEARCH, good, "resource-ownership") == []

    def test_owner_annotation_recognizes_handoff(self):
        good = (
            "from repro.search.transport import TcpTransport\n"
            "\n"
            "\n"
            "def make(addr):\n"
            "    # repro: owner(the caller)\n"
            "    return TcpTransport(bind=addr)\n"
        )
        assert rule_findings(SEARCH, good, "resource-ownership") == []

    def test_self_attribute_with_close_owns(self):
        good = (
            "class Holder:\n"
            "    def __init__(self, path):\n"
            "        self._handle = open(path, \"ab\")\n"
            "\n"
            "    def close(self):\n"
            "        self._handle.close()\n"
        )
        assert rule_findings(SEARCH, good, "resource-ownership") == []


class TestCacheKey:
    DIGEST = (
        "def content_digest(*parts):\n"
        "    return \"|\".join(repr(p) for p in parts)\n"
    )
    PARAMS = (
        "from dataclasses import dataclass, field\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class CostParams:\n"
        "    mac_energy: float = 1.0\n"
        "    sram_cost: float = 2.0\n"
    )
    BUDGET = (
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class MappingSearchBudget:\n"
        "    population: int = 8\n"
        "    iterations: int = 4\n"
    )
    CALLER = (
        "from repro.cost.config import CostParams\n"
        "from repro.search.mapping_search import MappingSearchBudget\n"
        "from repro.search.diskcache import content_digest\n"
        "\n"
        "\n"
        "def disk_key(entropy, key, budget: MappingSearchBudget,\n"
        "             params: CostParams):\n"
        "    return content_digest(entropy, key, budget, params)\n"
    )

    def project(self, **overrides):
        files = {
            "src/repro/search/diskcache.py": self.DIGEST,
            "src/repro/cost/config.py": self.PARAMS,
            "src/repro/search/mapping_search.py": self.BUDGET,
            "src/repro/search/accelerator_search.py": self.CALLER,
        }
        files.update(overrides)
        found = lint_sources(sorted(files.items()))
        return [f for f in found if f.rule == "cache-key"]

    def test_complete_project_passes(self):
        assert self.project() == []

    def test_repr_false_field_breaks_the_key(self):
        leaky = self.PARAMS.replace(
            "    sram_cost: float = 2.0\n",
            "    sram_cost: float = field(default=2.0, repr=False)\n",
        )
        found = self.project(**{"src/repro/cost/config.py": leaky})
        assert found and "repr" in found[0].message

    def test_custom_repr_breaks_the_key(self):
        hidden = self.PARAMS + (
            "\n"
            "    def __repr__(self):\n"
            "        return \"CostParams()\"\n"
        )
        found = self.project(**{"src/repro/cost/config.py": hidden})
        assert found and "__repr__" in found[0].message

    def test_unfrozen_dataclass_flagged(self):
        thawed = self.PARAMS.replace(
            "@dataclass(frozen=True)\nclass CostParams:",
            "@dataclass\nclass CostParams:",
        )
        found = self.project(**{"src/repro/cost/config.py": thawed})
        assert found and "frozen" in found[0].message

    def test_class_missing_from_call_sites_flagged(self):
        partial = self.CALLER.replace(
            "    return content_digest(entropy, key, budget, params)\n",
            "    return content_digest(entropy, key, budget)\n",
        ).replace(",\n             params: CostParams", "")
        found = self.project(
            **{"src/repro/search/accelerator_search.py": partial}
        )
        assert found
        assert any("CostParams" in f.message for f in found)
        assert all("MappingSearchBudget" not in f.message for f in found)


class TestFormat:
    def test_long_line_flagged(self):
        bad = "x = \"" + "a" * 90 + "\"\n"
        found = rule_findings(UNSCOPED, bad, "format")
        assert found and "columns" in found[0].message

    def test_single_quotes_flagged(self):
        bad = "name = 'pe_array'\n"
        found = rule_findings(UNSCOPED, bad, "format")
        assert found and "double quotes" in found[0].message

    def test_double_quotes_pass(self):
        good = "name = \"pe_array\"\n"
        assert rule_findings(UNSCOPED, good, "format") == []

    def test_single_quotes_embedding_doubles_pass(self):
        good = "quip = 'a \"quoted\" word'\n"
        assert rule_findings(UNSCOPED, good, "format") == []

    def test_fstrings_are_checked(self):
        bad = "label = f'{1 + 1}'\n"
        found = rule_findings(UNSCOPED, bad, "format")
        assert found and "double quotes" in found[0].message


class TestSuppression:
    BAD_LINE = "stamp = time.time()"

    def test_allow_with_reason_suppresses(self):
        text = (
            "import time\n"
            "\n"
            f"{self.BAD_LINE}  # repro: allow(determinism) -- log stamp\n"
        )
        assert lint_sources([(COST, text)]) == []

    def test_allow_without_reason_is_a_finding_and_no_suppression(self):
        text = (
            "import time\n"
            "\n"
            f"{self.BAD_LINE}  # repro: allow(determinism)\n"
        )
        found = lint_sources([(COST, text)])
        rules = {f.rule for f in found}
        assert "suppression" in rules
        assert "determinism" in rules

    def test_allow_for_a_different_rule_does_not_suppress(self):
        text = (
            "import time\n"
            "\n"
            f"{self.BAD_LINE}  # repro: allow(format) -- wrong rule\n"
        )
        found = lint_sources([(COST, text)])
        assert any(f.rule == "determinism" for f in found)

    def test_unknown_rule_name_is_a_finding(self):
        text = (
            "import time\n"
            "\n"
            f"{self.BAD_LINE}  # repro: allow(no-such-rule) -- oops\n"
        )
        found = lint_sources([(COST, text)])
        rules = {f.rule for f in found}
        assert "suppression" in rules
        assert "determinism" in rules

    def test_standalone_allow_binds_to_next_statement(self):
        text = (
            "import time\n"
            "\n"
            "# repro: allow(determinism) -- cache-hygiene cutoff only;\n"
            "# never feeds a result\n"
            "cutoff = (time.time()\n"
            "          - 86400.0)\n"
        )
        assert lint_sources([(COST, text)]) == []

    def test_suppression_itself_cannot_be_allowed(self):
        text = (
            "import time\n"
            "\n"
            f"{self.BAD_LINE}  "
            "# repro: allow(determinism, suppression)\n"
        )
        found = lint_sources([(COST, text)])
        assert any(f.rule == "suppression" for f in found)

    def test_syntax_errors_are_findings(self):
        found = lint_sources([(UNSCOPED, "def broken(:\n")])
        assert any(f.rule == "syntax" for f in found)


class TestCommandLine:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = \"ok\"\n", encoding="utf-8")
        assert main(["lint", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_dirty_file_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text("VALUE = 'bad'\n", encoding="utf-8")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "[format]" in out and "1 finding" in out

    def test_lint_missing_path_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope"
        assert main(["lint", str(missing)]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_module_entry_point_matches(self, tmp_path):
        from repro.analysis import main as lint_main

        dirty = tmp_path / "dirty.py"
        dirty.write_text("VALUE = 'bad'\n", encoding="utf-8")
        assert lint_main([str(dirty)]) == 1


class TestTreeIsClean:
    def test_src_and_tests_have_zero_findings(self):
        findings = lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"repro lint found:\n{rendered}"
