#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one run.

Runs the full experiment registry (Fig 4-10, Tables III-IV) at the
selected budget profile and writes an EXPERIMENTS-style report to
stdout. With the default ``quick`` profile this takes a few minutes;
``REPRO_PROFILE=full`` (or ``paper``) trades hours for tighter numbers.

Run:  python examples/reproduce_paper.py [experiment ...]
"""

import sys

from repro.experiments import EXPERIMENTS, run_experiment


def main() -> None:
    names = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"known: {sorted(EXPERIMENTS)}")

    failures = []
    for name in names:
        result = run_experiment(name, seed=0)
        print(result.render())
        print()
        if not result.all_claims_hold:
            failures.append(name)

    if failures:
        raise SystemExit(f"claims failed in: {failures}")
    print(f"all qualitative claims hold across {len(names)} experiments")


if __name__ == "__main__":
    main()
