#!/usr/bin/env python
"""Full three-level co-search: accelerator + mapping + neural network.

Reproduces the paper's §II-C flow (Fig 10's best point) in miniature:
under Eyeriss-class resources, search the accelerator architecture and,
per candidate, evolve an OFA ResNet subnet meeting an accuracy
requirement; the subnet's mapping-searched EDP is the hardware reward.

Run:  python examples/joint_nas_search.py
"""

from repro import CostModel, baseline_constraint, baseline_preset, build_subnet
from repro.mapping.builders import dataflow_preserving_mapping
from repro.nas import AccuracyPredictor, NASBudget, OFAResNetSpace
from repro.nas.joint import JointBudget, search_joint
from repro.search import MappingSearchBudget


def main() -> None:
    cost_model = CostModel()
    constraint = baseline_constraint("eyeriss")
    preset = baseline_preset("eyeriss")
    predictor = AccuracyPredictor()
    space = OFAResNetSpace()

    # Reference point: ResNet-50 on Eyeriss with its native compiler.
    resnet = build_subnet(space.resnet50_like())
    reference = cost_model.evaluate_network(
        resnet, preset, lambda l: dataflow_preserving_mapping(l, preset))
    ref_acc = predictor(space.resnet50_like())
    print(f"reference: ResNet-50 on {preset.name}: "
          f"top-1 {ref_acc:.1f}%  EDP {reference.edp:.3e}")
    print(f"accuracy requirement for the co-search: >= 78.0%")
    print()

    result = search_joint(
        constraint, cost_model, accuracy_floor=78.0,
        budget=JointBudget(
            accel_population=5, accel_iterations=3,
            nas=NASBudget(population=6, iterations=3),
            mapping=MappingSearchBudget(population=6, iterations=4)),
        seed=0, predictor=predictor, seed_configs=(preset,))

    if not result.found:
        raise SystemExit("joint search found no admissible design point")

    print(f"searched accelerator : {result.best_config.describe()}")
    print(f"searched network     : {result.best_arch.describe()}")
    print(f"top-1 accuracy       : {result.best_accuracy:.1f}%  "
          f"({result.best_accuracy - ref_acc:+.1f} vs ResNet-50)")
    print(f"EDP                  : {result.best_edp:.3e}  "
          f"({reference.edp / result.best_edp:.2f}x better than reference)")
    print(f"hardware candidates  : {result.hardware_evaluations}")
    print(f"network evaluations  : {result.network_evaluations}")
    print()
    print("paper's Fig 10: +2.7% top-1 with 4.88x EDP reduction over "
          "Eyeriss+ResNet50; expect the same direction here.")


if __name__ == "__main__":
    main()
