#!/usr/bin/env python
"""Extension: mixed-precision quantization in the co-search loop.

The paper's related work (HAQ, NHAS) quantizes; NAAS itself leaves the
bitwidth fixed at 8. This example runs the extension in
``repro.nas.quantization``: evolve (subnet, per-stage bitwidth policy)
pairs on a fixed accelerator, trading accuracy for EDP. Expect the
search to quantize the cheap stages down and keep accuracy-critical
stages wide.

Run:  python examples/quantization_search.py
"""

from repro import CostModel, baseline_preset, build_subnet
from repro.mapping.builders import dataflow_preserving_mapping
from repro.nas import OFAResNetSpace
from repro.nas.quantization import (
    QuantPolicy,
    QuantizedAccuracyPredictor,
    quantize_subnet,
    search_quantized,
)
from repro.search import MappingSearchBudget


def main() -> None:
    cost_model = CostModel()
    accel = baseline_preset("nvdla_256")
    predictor = QuantizedAccuracyPredictor()
    space = OFAResNetSpace()

    # Reference: the ResNet-50-like subnet at uniform 8 bit.
    arch = space.resnet50_like()
    for bits in (16, 8, 4):
        policy = QuantPolicy.uniform(bits)
        network = quantize_subnet(arch, policy)
        cost = cost_model.evaluate_network(
            network, accel, lambda l: dataflow_preserving_mapping(l, accel))
        print(f"uniform {bits:2d}-bit: top-1 "
              f"{predictor(arch, policy):5.1f}%  EDP {cost.edp:.3e}")
    print()

    result = search_quantized(
        accel, cost_model, accuracy_floor=75.0,
        population=8, iterations=4,
        mapping_budget=MappingSearchBudget(population=6, iterations=3),
        seed=0, predictor=predictor)

    if not result.found:
        raise SystemExit("no admissible (subnet, policy) pair found")
    print(f"searched subnet : {result.best_arch.describe()}")
    print(f"searched policy : {result.best_policy.describe()} "
          f"(per-stage bits)")
    print(f"top-1 accuracy  : {result.best_accuracy:.1f}%")
    print(f"EDP             : {result.best_edp:.3e}")
    print(f"evaluations     : {result.evaluations}")


if __name__ == "__main__":
    main()
