#!/usr/bin/env python
"""Quickstart: search an accelerator for MobileNetV2 within Eyeriss resources.

This is the paper's headline experiment in miniature: give NAAS the same
PE count, on-chip memory and bandwidth budget as Eyeriss, and let it
co-search the accelerator architecture (sizing + connectivity) and the
per-layer compiler mappings. Expect a several-fold EDP improvement.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    MappingSearchBudget,
    NAASBudget,
    baseline_constraint,
    baseline_preset,
    build_model,
    search_accelerator,
)
from repro.mapping.builders import dataflow_preserving_mapping


def main() -> None:
    cost_model = CostModel()
    network = build_model("mobilenet_v2")
    preset = baseline_preset("eyeriss")

    print(network.describe())
    print()

    # How does the baseline do with its native dataflow + compiler?
    baseline = cost_model.evaluate_network(
        network, preset, lambda l: dataflow_preserving_mapping(l, preset))
    print(f"Baseline {preset.describe()}")
    print(f"  cycles={baseline.total_cycles:.3e}  "
          f"energy={baseline.total_energy_nj:.3e} nJ  "
          f"EDP={baseline.edp:.3e}  util={baseline.mean_utilization:.1%}")
    print()

    # NAAS: same resources, free architecture + mapping.
    budget = NAASBudget(accel_population=10, accel_iterations=8,
                        mapping=MappingSearchBudget(population=8,
                                                    iterations=5))
    result = search_accelerator(
        [network], baseline_constraint("eyeriss"), cost_model,
        budget=budget, seed=0, seed_configs=[preset])

    found = result.network_costs[network.name]
    print(f"NAAS-searched {result.best_config.describe()}")
    print(f"  cycles={found.total_cycles:.3e}  "
          f"energy={found.total_energy_nj:.3e} nJ  "
          f"EDP={found.edp:.3e}  util={found.mean_utilization:.1%}")
    print()
    print(f"speedup        : {baseline.total_cycles / found.total_cycles:.2f}x")
    print(f"energy saving  : {baseline.total_energy_nj / found.total_energy_nj:.2f}x")
    print(f"EDP reduction  : {baseline.edp / found.edp:.2f}x  "
          f"(paper reports ~9x EDP for Eyeriss-resource mobile workloads)")


if __name__ == "__main__":
    main()
