#!/usr/bin/env python
"""Inner loop up close: search the compiler mapping for a single layer.

Shows what §II-B of the paper actually optimizes — loop orders at the
array and PE levels plus per-dimension tiling — and how much EDP a good
mapping buys over the hand-built heuristic on *fixed* hardware (here a
VGG16 conv on NVDLA-256).

Run:  python examples/mapping_search_layer.py
"""

from repro import CostModel, MappingSearchBudget, baseline_preset, build_model
from repro.mapping.builders import dataflow_preserving_mapping
from repro.search import search_mapping


def describe_cost(tag, cost) -> None:
    traffic = cost.traffic
    print(f"{tag}:")
    print(f"  cycles      = {cost.cycles:.3e}  (bottleneck: "
          f"{cost.latency.bottleneck})")
    print(f"  energy      = {cost.energy_nj:.3e} nJ  "
          f"(DRAM share: {cost.energy.breakdown()['dram']:.0%})")
    print(f"  EDP         = {cost.edp:.3e}")
    print(f"  utilization = {cost.utilization:.1%}")
    print(f"  DRAM bytes  = {traffic.total_dram_bytes:.3e}")
    print()


def main() -> None:
    cost_model = CostModel()
    accel = baseline_preset("nvdla_256")
    # conv3_2 of VGG16: a bulky 256x256 3x3 conv at 56x56.
    layer = next(l for l in build_model("vgg16") if l.name == "conv3_2")

    print(f"Layer {layer.name}: K={layer.k} C={layer.c} "
          f"Y={layer.y} X={layer.x} R={layer.r}  "
          f"({layer.macs / 1e6:.0f} MMACs)")
    print(f"Hardware: {accel.describe()}")
    print()

    heuristic = dataflow_preserving_mapping(layer, accel)
    heuristic_cost = cost_model.evaluate(layer, accel, heuristic)
    print(f"heuristic mapping: {heuristic.describe()}")
    describe_cost("heuristic", heuristic_cost)

    result = search_mapping(layer, accel, cost_model,
                            budget=MappingSearchBudget(population=16,
                                                       iterations=10),
                            seed=0)
    print(f"searched mapping:  {result.best_mapping.describe()}")
    describe_cost("searched", result.best_cost)

    print(f"mapping search improved EDP by "
          f"{heuristic_cost.edp / result.best_cost.edp:.2f}x "
          f"over the compiler heuristic "
          f"({result.evaluations} evaluations)")
    print("\nper-iteration population statistics:")
    for stats in result.history:
        print(f"  iter {stats.iteration}: best={stats.best_fitness:.3e} "
              f"mean={stats.mean_fitness:.3e} "
              f"valid={stats.valid_count}/{stats.population}")


if __name__ == "__main__":
    main()
