#!/usr/bin/env python
"""Diagnose where a network's time and energy go on an accelerator.

Uses :mod:`repro.cost.diagnose` to print the hotspot layers, the
bottleneck histogram, and the difference a NAAS-searched design makes —
useful when deciding whether a workload needs more bandwidth, more PEs,
or a different dataflow.

Run:  python examples/bottleneck_report.py
"""

from repro import (
    CostModel,
    MappingSearchBudget,
    NAASBudget,
    baseline_constraint,
    baseline_preset,
    build_model,
    search_accelerator,
)
from repro.cost.diagnose import (
    bottleneck_histogram,
    diagnose_network,
    render_diagnosis,
)
from repro.mapping.builders import dataflow_preserving_mapping


def report(tag, network, accel, mapping_for, cost_model):
    cost, rows = diagnose_network(network, accel, mapping_for, cost_model)
    print(f"=== {tag}: {accel.describe()}")
    print(f"total: {cost.total_cycles:.3e} cycles, "
          f"{cost.total_energy_nj:.3e} nJ, EDP {cost.edp:.3e}")
    print(f"bottleneck histogram: {bottleneck_histogram(rows)}")
    print(render_diagnosis(rows, top=6))
    print()
    return cost


def main() -> None:
    cost_model = CostModel()
    network = build_model("mnasnet")
    preset = baseline_preset("nvdla_256")

    baseline = report(
        "baseline", network, preset,
        lambda l: dataflow_preserving_mapping(l, preset), cost_model)

    searched = search_accelerator(
        [network], baseline_constraint("nvdla_256"), cost_model,
        budget=NAASBudget(accel_population=8, accel_iterations=6,
                          mapping=MappingSearchBudget(population=8,
                                                      iterations=4)),
        seed=0, seed_configs=[preset])
    mappings = searched.best_mappings

    found = report(
        "NAAS-searched", network, searched.best_config,
        lambda l: mappings[l.name], cost_model)

    print(f"EDP reduction: {baseline.edp / found.edp:.2f}x")


if __name__ == "__main__":
    main()
