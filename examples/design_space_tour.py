#!/usr/bin/env python
"""Design-space tour: how dataflow choice interacts with workloads.

Evaluates one dense conv, one pointwise conv and one depthwise conv on
four fixed 256-PE accelerators that differ only in their parallel
dimensions (the paper's Table II correlations made concrete): C-K
(NVDLA-style), Y-X (ShiDianNao-style), K-Y and R-Y (Eyeriss-style).
Depthwise layers starve C-parallel arrays; pointwise layers starve
R-parallel ones — exactly the couplings NAAS exploits.

Run:  python examples/design_space_tour.py
"""

from repro import CostModel
from repro.accelerator.arch import AcceleratorConfig
from repro.mapping.builders import dataflow_preserving_mapping
from repro.tensors.dims import Dim
from repro.tensors.layer import ConvLayer, conv1x1, depthwise
from repro.utils.tables import render_table

DATAFLOWS = {
    "C-K (NVDLA)": (Dim.C, Dim.K),
    "Y-X (ShiDianNao)": (Dim.Y, Dim.X),
    "K-Y": (Dim.K, Dim.Y),
    "R-Y (Eyeriss)": (Dim.R, Dim.Y),
}

LAYERS = [
    ConvLayer(name="dense 3x3", k=128, c=128, y=28, x=28, r=3, s=3),
    conv1x1("pointwise", 256, 128, y=28, x=28),
    depthwise("depthwise 3x3", 128, y=28, x=28),
]


def main() -> None:
    cost_model = CostModel()
    rows = []
    for dataflow_name, parallel in DATAFLOWS.items():
        accel = AcceleratorConfig(
            array_dims=(16, 16), parallel_dims=parallel,
            l1_bytes=256, l2_bytes=256 * 1024, dram_bandwidth=32,
            name=dataflow_name)
        for layer in LAYERS:
            mapping = dataflow_preserving_mapping(layer, accel)
            cost = cost_model.evaluate(layer, accel, mapping)
            rows.append((dataflow_name, layer.name,
                         f"{cost.utilization:.1%}",
                         cost.cycles, cost.energy_nj, cost.edp))

    print(render_table(
        ["dataflow", "layer", "utilization", "cycles", "energy (nJ)", "EDP"],
        rows))
    print()
    print("Read-out: C-K dies on depthwise (C=1 idles an axis), Y-X is")
    print("robust across all three, R-parallel wastes rows on 1x1 kernels.")
    print("NAAS's connectivity search picks the dataflow per scenario")
    print("instead of baking one in.")


if __name__ == "__main__":
    main()
