#!/usr/bin/env python
"""Trace the accuracy/EDP frontier on fixed hardware (Fig 10, extended).

The paper reports single operating points; this example sweeps the NAS
loop across accuracy floors on an NVDLA-256 and prints the resulting
non-dominated (accuracy, EDP) frontier with its hypervolume.

Run:  python examples/pareto_frontier.py
"""

from repro import CostModel, baseline_preset
from repro.nas.search import NASBudget
from repro.search import MappingSearchBudget
from repro.search.pareto import hypervolume, sweep_accuracy_frontier
from repro.utils.tables import render_table


def main() -> None:
    accel = baseline_preset("nvdla_256")
    print(f"hardware: {accel.describe()}")

    floors = [70.0, 73.0, 75.0, 76.5, 78.0]
    front = sweep_accuracy_frontier(
        accel, CostModel(), accuracy_floors=floors,
        nas_budget=NASBudget(population=6, iterations=3),
        mapping_budget=MappingSearchBudget(population=6, iterations=3),
        seed=0)

    rows = [(point.label, f"{point.accuracy:.2f}", point.edp,
             point.arch.describe() if point.arch else "-")
            for point in front]
    print(render_table(["sweep floor", "top-1 (%)", "EDP", "architecture"],
                       rows))
    reference = (70.0, max(p.edp for p in front) * 1.1)
    print(f"\nfrontier points : {len(front)}")
    print(f"hypervolume     : {hypervolume(front, reference):.3e} "
          f"(ref: acc>={reference[0]}, EDP<={reference[1]:.2e})")
    print("\nhigher floors force bigger subnets: accuracy climbs, EDP pays.")


if __name__ == "__main__":
    main()
